// Command memlife runs the reproduction experiments of "Aging-aware
// Lifetime Enhancement for Memristor-based Neuromorphic Computing"
// (DATE 2019). Each experiment regenerates one table or figure of the
// paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	memlife -list
//	memlife -run table1 [-fast] [-seed N] [-v]
//	memlife -all [-fast] [-workers M]
//	memlife -run table1,fault-sweep -seeds 5 -workers 4 -json out.json [-resume]
//	memlife -scenario file.json [-fast] [-seed N] [-dump-spec]
//	memlife serve -addr 127.0.0.1:8080 -store dir [-v]
//	memlife doctor -store dir
//	memlife -version
//
// Exit codes: 0 success (including a graceful serve drain), 1 runtime
// failure, 2 usage error, 3 force-exit (a second SIGINT/SIGTERM while
// the first one's graceful drain was still in progress).
//
// With -seeds/-json/-resume the selected experiments run as a Monte
// Carlo campaign: every (experiment, seed) pair becomes one shard on a
// bounded worker pool, completed shards are journaled to a checkpoint,
// and the aggregated JSON is byte-identical whatever the worker count.
// -stream switches the campaign to online constant-memory aggregation
// (identical statistics bits, plus quantile sketches, minus the
// per-shard list).
//
// With -scenario a custom scenario spec (see internal/spec and
// examples/scenarios/) is resolved defaults -> file -> flags, validated
// and run as a one-off lifetime simulation; -dump-spec prints the fully
// resolved spec instead of running it.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"memlife/internal/bench"
	"memlife/internal/campaign"
	"memlife/internal/experiments"
	"memlife/internal/spec"
	"memlife/internal/telemetry"
)

// exitForced is the exit code of a second interrupt: the first always
// starts a graceful drain (cancel the run context, checkpoint, flush
// telemetry), the second abandons it immediately. Distinct from 1
// (runtime failure) and 2 (usage) so wrappers can tell a hard kill
// from a failed run.
const exitForced = 3

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain wires the two-stage signal contract around run: the first
// SIGINT/SIGTERM cancels the context (every mode treats that as
// "drain and exit cleanly"); a second one force-exits with exitForced
// for runs whose drain hangs or takes longer than the operator's
// patience. Extracted from main so the e2e tests can exercise the real
// signal path in a helper process.
func realMain(args []string, stdout, stderr io.Writer) int {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		s, ok := <-sig
		if !ok {
			return
		}
		fmt.Fprintf(stderr, "memlife: %v: draining (send again to force-exit)\n", s)
		cancel()
		if _, ok := <-sig; ok {
			os.Exit(exitForced)
		}
	}()
	return run(ctx, args, stdout, stderr)
}

// cliConfig is the parsed flag set of one invocation.
type cliConfig struct {
	list        bool
	runIDs      string
	all         bool
	fast        bool
	seed        int64
	verb        bool
	outDir      string
	seeds       int
	workers     int
	evalWorkers int
	jsonOut     string
	checkpoint  string
	resume      bool
	stream      bool

	scenario     string
	deviceModel  string
	tuningPolicy string
	dumpSpec     bool
	version      bool

	metricsOut string
	traceOut   string
	debugAddr  string

	bench         bool
	benchOut      string
	benchBaseline string
	benchTol      float64
	cpuProfile    string

	// overrides carries the explicitly set CLI flags into stage 3 of
	// the spec resolution chain (spec.Overrides); flags left at their
	// defaults do not override scenario-file values.
	overrides spec.Overrides
}

// run is the testable CLI entry point: it parses args, executes the
// requested experiments, and returns the process exit code. User errors
// (unknown experiment id, conflicting flags) produce a one-line message
// on stderr and a non-zero code — never a stack trace.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	// Subcommands route before flag parsing; everything else is the
	// historical flag-driven CLI.
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "serve":
			return runServe(ctx, args[1:], stdout, stderr)
		case "doctor":
			return runDoctor(args[1:], stdout, stderr)
		default:
			fmt.Fprintf(stderr, "memlife: unknown subcommand %q (want serve or doctor; experiments are selected with -run)\n", args[0])
			return 2
		}
	}
	fs := flag.NewFlagSet("memlife", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c cliConfig
	fs.BoolVar(&c.list, "list", false, "list available experiments")
	fs.StringVar(&c.runIDs, "run", "", "comma-separated experiment ids to run")
	fs.BoolVar(&c.all, "all", false, "run every experiment")
	fs.BoolVar(&c.fast, "fast", false, "use reduced sizes/budgets (seconds instead of minutes)")
	fs.Int64Var(&c.seed, "seed", 1, "random seed (campaign: base seed of the shard derivation)")
	fs.BoolVar(&c.verb, "v", false, "log progress to stderr")
	fs.StringVar(&c.outDir, "out", "", "also write each experiment's output to <dir>/<id>.txt")
	fs.IntVar(&c.seeds, "seeds", 1, "campaign: seeds per experiment (>1 selects campaign mode)")
	fs.IntVar(&c.workers, "workers", 0, "bound on parallel workers (0 = GOMAXPROCS)")
	fs.IntVar(&c.evalWorkers, "eval-workers", 0, "forward-pass parallelism inside each evaluation (bit-identical results; 0 = serial)")
	fs.StringVar(&c.jsonOut, "json", "", "campaign: write aggregated results as canonical JSON to this file")
	fs.StringVar(&c.checkpoint, "checkpoint", "", "campaign: shard journal path (default <json>.ckpt.jsonl)")
	fs.BoolVar(&c.resume, "resume", false, "campaign: skip shards already journaled in the checkpoint")
	fs.BoolVar(&c.stream, "stream", false, "campaign: aggregate shard metrics online in constant memory (adds quantiles, drops the per-shard list from the JSON)")
	fs.StringVar(&c.scenario, "scenario", "", "run one scenario spec file (JSON, see examples/scenarios/); flags set explicitly override the file")
	fs.StringVar(&c.deviceModel, "device-model", "", "override the device-physics model kind: linear, mms, yacopcic or diffusive")
	fs.StringVar(&c.tuningPolicy, "tuning-policy", "", "override the tuning pulse-selection policy: sign, recalib or minreprog")
	fs.BoolVar(&c.dumpSpec, "dump-spec", false, "resolve the scenario spec (defaults, -scenario file, flags) and print it as JSON instead of running")
	fs.BoolVar(&c.version, "version", false, "print the build version and exit")
	fs.StringVar(&c.metricsOut, "metrics-out", "", "write a telemetry snapshot (canonical JSON) to this file on exit")
	fs.StringVar(&c.traceOut, "trace-out", "", "stream telemetry spans/events as JSONL to this file")
	fs.StringVar(&c.debugAddr, "debug-addr", "", "serve /metrics/json, /healthz and net/http/pprof on this address (e.g. 127.0.0.1:6060)")
	fs.BoolVar(&c.bench, "bench", false, "run the micro-benchmark harness instead of experiments")
	fs.StringVar(&c.benchOut, "bench-out", "", "bench: write the canonical JSON report to this file (default stdout)")
	fs.StringVar(&c.benchBaseline, "bench-baseline", "", "bench: compare against this committed baseline report and fail on regression")
	fs.Float64Var(&c.benchTol, "bench-tol", 4, "bench: allowed ns/op growth factor over the baseline (4 = up to 5x slower; generous because baselines cross machines)")
	fs.StringVar(&c.cpuProfile, "cpuprofile", "", "bench: write a CPU profile of the kernel runs to this file (pprof format)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Only flags the user actually set become spec overrides — a flag's
	// default must not clobber a scenario-file value.
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "fast":
			c.overrides.Fast = &c.fast
		case "seed":
			c.overrides.Seed = &c.seed
		case "eval-workers":
			c.overrides.Workers = &c.evalWorkers
		case "device-model":
			c.overrides.DeviceModel = &c.deviceModel
		case "tuning-policy":
			c.overrides.TuningPolicy = &c.tuningPolicy
		}
	})
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "memlife: unexpected argument %q (experiments are selected with -run)\n", fs.Arg(0))
		return 2
	}
	if c.all && c.runIDs != "" {
		fmt.Fprintln(stderr, "memlife: -all and -run are mutually exclusive")
		return 2
	}
	if c.seeds < 1 {
		fmt.Fprintln(stderr, "memlife: -seeds must be >= 1")
		return 2
	}
	if c.version {
		fmt.Fprintf(stdout, "memlife %s\n", buildVersion())
		return 0
	}

	// Telemetry spans the whole invocation whatever mode runs below; the
	// session writes -metrics-out and closes -trace-out/-debug-addr on
	// the way out (even when the mode fails).
	tel, code := startTelemetry(c, stderr)
	if code != 0 {
		return code
	}
	code = dispatch(ctx, c, fs, stdout, stderr)
	if tcode := tel.finish(stderr); code == 0 {
		code = tcode
	}
	return code
}

// dispatch routes the parsed invocation to its mode.
func dispatch(ctx context.Context, c cliConfig, fs *flag.FlagSet, stdout, stderr io.Writer) int {
	campaignMode := c.seeds > 1 || c.jsonOut != "" || c.resume || c.checkpoint != "" || c.stream
	specMode := c.scenario != "" || c.dumpSpec
	switch {
	case specMode:
		if c.all || c.runIDs != "" || c.bench || campaignMode {
			fmt.Fprintln(stderr, "memlife: -scenario/-dump-spec run one spec and exclude -run/-all/-bench and campaign flags")
			return 2
		}
		return runScenario(ctx, c, stdout, stderr)
	case c.bench:
		if c.all || c.runIDs != "" || campaignMode {
			fmt.Fprintln(stderr, "memlife: -bench runs the benchmark harness and takes no experiment selection")
			return 2
		}
		return runBench(c, stdout, stderr)
	case c.list:
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", e.ID, e.Title)
		}
		return 0
	case campaignMode:
		if !c.all && c.runIDs == "" {
			fmt.Fprintln(stderr, "memlife: campaign mode (-seeds/-json/-resume/-checkpoint) needs -run or -all")
			return 2
		}
		return runCampaign(ctx, c, stdout, stderr)
	case c.all || c.runIDs != "":
		ids, code := selectIDs(c, stderr)
		if code != 0 {
			return code
		}
		if c.outDir != "" {
			if err := os.MkdirAll(c.outDir, 0o755); err != nil {
				fmt.Fprintf(stderr, "memlife: creating -out dir: %v\n", err)
				return 1
			}
		}
		workers := c.workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(ids) {
			workers = len(ids)
		}
		if workers <= 1 {
			return runSequential(ctx, c, ids, stdout, stderr)
		}
		return runParallel(ctx, c, ids, workers, stdout, stderr)
	default:
		fs.Usage()
		return 2
	}
}

// runScenario is the unified-spec mode: resolve the scenario spec
// through the three-stage chain (package defaults -> -scenario file ->
// explicit flags), then either print the resolved spec (-dump-spec) or
// execute the lifetime study it describes.
func runScenario(ctx context.Context, c cliConfig, stdout, stderr io.Writer) int {
	s, err := spec.ResolveFile(c.scenario, c.overrides)
	if err != nil {
		fmt.Fprintf(stderr, "memlife: %v\n", err)
		return 1
	}
	if c.dumpSpec {
		b, err := s.Dump()
		if err != nil {
			fmt.Fprintf(stderr, "memlife: %v\n", err)
			return 1
		}
		stdout.Write(b)
		return 0
	}
	opt := experiments.Options{Ctx: ctx}
	if c.verb {
		opt.Log = stderr
	}
	sp := telemetry.StartSpan("experiment/run")
	err = experiments.RunScenario(stdout, s, opt)
	sp.End(telemetry.Attrs{"id": "scenario", "ok": err == nil})
	if err != nil {
		fmt.Fprintf(stderr, "memlife: scenario failed: %v\n", err)
		return 1
	}
	return 0
}

// runBench runs the registered micro-kernels through the bench harness,
// writes the canonical JSON report, and optionally gates against a
// committed baseline (-bench-baseline / -bench-tol). With -cpuprofile
// the whole kernel sweep runs under the CPU profiler, so a failed gate
// ships the evidence needed to see where the regression lives (CI
// uploads the profile as an artifact on failure). See internal/bench.
func runBench(c cliConfig, stdout, stderr io.Writer) int {
	if c.cpuProfile != "" {
		f, err := os.Create(c.cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "memlife: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "memlife: starting CPU profile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "memlife: closing CPU profile: %v\n", err)
			}
		}()
	}
	rep, err := bench.RunAll(time.Now().Format("2006-01-02"))
	if err != nil {
		fmt.Fprintf(stderr, "memlife: %v\n", err)
		return 1
	}
	if c.benchOut != "" {
		if err := writeFileAtomic(c.benchOut, rep.WriteJSON); err != nil {
			fmt.Fprintf(stderr, "memlife: writing bench report: %v\n", err)
			return 1
		}
	} else if err := rep.WriteJSON(stdout); err != nil {
		fmt.Fprintf(stderr, "memlife: writing bench report: %v\n", err)
		return 1
	}
	if c.benchBaseline != "" {
		f, err := os.Open(c.benchBaseline)
		if err != nil {
			fmt.Fprintf(stderr, "memlife: %v\n", err)
			return 1
		}
		base, err := bench.ReadReport(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "memlife: %v\n", err)
			return 1
		}
		if err := bench.Compare(base, rep, c.benchTol); err != nil {
			fmt.Fprintf(stderr, "memlife: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "memlife: bench within tolerance of %s\n", c.benchBaseline)
	}
	return 0
}

// selectIDs resolves the experiment selection. -all runs every
// registered experiment except the Meta ones (campaign drivers), which
// would rerun experiments the loop already covers.
func selectIDs(c cliConfig, stderr io.Writer) ([]string, int) {
	var ids []string
	if c.all {
		for _, e := range experiments.All() {
			if !e.Meta {
				ids = append(ids, e.ID)
			}
		}
		return ids, 0
	}
	for _, id := range strings.Split(c.runIDs, ",") {
		id = strings.TrimSpace(id)
		if _, ok := experiments.ByID(id); !ok {
			fmt.Fprintf(stderr, "memlife: unknown experiment %q (try -list)\n", id)
			return nil, 1
		}
		ids = append(ids, id)
	}
	return ids, 0
}

// outFile opens <outDir>/<id>.txt when -out is set (nil otherwise).
func outFile(c cliConfig, id string, stderr io.Writer) (*os.File, int) {
	if c.outDir == "" {
		return nil, 0
	}
	f, err := os.Create(filepath.Join(c.outDir, id+".txt"))
	if err != nil {
		fmt.Fprintf(stderr, "memlife: %v\n", err)
		return nil, 1
	}
	return f, 0
}

// runSequential is the single-worker text path: experiments run one at
// a time, streaming output as they go.
func runSequential(ctx context.Context, c cliConfig, ids []string, stdout, stderr io.Writer) int {
	opt := experiments.Options{Fast: c.fast, Seed: c.seed, Ctx: ctx, Workers: c.evalWorkers}
	if c.verb {
		opt.Log = stderr
	}
	for _, id := range ids {
		e, _ := experiments.ByID(id)
		w := stdout
		f, code := outFile(c, id, stderr)
		if code != 0 {
			return code
		}
		if f != nil {
			w = io.MultiWriter(stdout, f)
		}
		fmt.Fprintf(stdout, "=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		sp := telemetry.StartSpan("experiment/run")
		err := e.Run(w, opt)
		sp.End(telemetry.Attrs{"id": e.ID, "ok": err == nil})
		if f != nil {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(stderr, "memlife: %s failed: %v\n", e.ID, err)
			return 1
		}
		fmt.Fprintf(stdout, "=== %s done in %s ===\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// runParallel fans the selected experiments over a bounded worker
// pool. Each experiment renders into its own buffer; the drain loop
// prints completed buffers in selection order, so stdout reads exactly
// like the sequential mode. Progress logs (-v) are multiplexed onto
// stderr line-by-line with experiment prefixes.
func runParallel(ctx context.Context, c cliConfig, ids []string, workers int, stdout, stderr io.Writer) int {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	logMux := campaign.NewSyncWriter(stderr)
	type job struct {
		e       experiments.Experiment
		buf     bytes.Buffer
		err     error
		elapsed time.Duration
		done    chan struct{}
	}
	jobs := make([]*job, len(ids))
	for i, id := range ids {
		e, _ := experiments.ByID(id)
		jobs[i] = &job{e: e, done: make(chan struct{})}
	}

	sem := make(chan struct{}, workers)
	for _, j := range jobs {
		go func(j *job) {
			defer close(j.done)
			sem <- struct{}{}
			defer func() { <-sem }()
			if runCtx.Err() != nil {
				j.err = runCtx.Err()
				return
			}
			opt := experiments.Options{Fast: c.fast, Seed: c.seed, Ctx: runCtx, Workers: c.evalWorkers}
			var view io.WriteCloser
			if c.verb {
				view = logMux.Shard(j.e.ID)
				opt.Log = view
			}
			start := time.Now()
			sp := telemetry.StartSpan("experiment/run")
			j.err = j.e.Run(&j.buf, opt)
			sp.End(telemetry.Attrs{"id": j.e.ID, "ok": j.err == nil})
			j.elapsed = time.Since(start)
			if view != nil {
				view.Close()
			}
			if j.err != nil {
				cancel() // first failure stops the rest
			}
		}(j)
	}

	exit := 0
	for _, j := range jobs {
		<-j.done
		if j.err != nil {
			if exit == 0 {
				fmt.Fprintf(stderr, "memlife: %s failed: %v\n", j.e.ID, j.err)
				exit = 1
			}
			continue
		}
		f, code := outFile(c, j.e.ID, stderr)
		if code != 0 {
			return code
		}
		if f != nil {
			f.Write(j.buf.Bytes())
			f.Close()
		}
		fmt.Fprintf(stdout, "=== %s: %s ===\n", j.e.ID, j.e.Title)
		stdout.Write(j.buf.Bytes())
		fmt.Fprintf(stdout, "=== %s done in %s ===\n\n", j.e.ID, j.elapsed.Round(time.Millisecond))
	}
	return exit
}

// runCampaign executes the Monte Carlo campaign mode: the selected
// experiments sharded over -seeds seeds, journaled to a checkpoint,
// aggregated with confidence intervals, and (optionally) written as
// canonical JSON whose bytes are independent of -workers.
func runCampaign(ctx context.Context, c cliConfig, stdout, stderr io.Writer) int {
	ids, code := selectIDs(c, stderr)
	if code != 0 {
		return code
	}
	hash, err := experiments.ConfigFingerprint(c.fast)
	if err != nil {
		fmt.Fprintf(stderr, "memlife: %v\n", err)
		return 1
	}
	cspec := campaign.Spec{
		Experiments: ids,
		Seeds:       c.seeds,
		BaseSeed:    c.seed,
		Fast:        c.fast,
		ConfigHash:  hash,
	}
	ckpt := c.checkpoint
	if ckpt == "" && c.jsonOut != "" {
		ckpt = c.jsonOut + ".ckpt.jsonl"
	}
	if c.resume && ckpt == "" {
		fmt.Fprintln(stderr, "memlife: -resume needs -checkpoint or -json to locate the journal")
		return 2
	}
	cfg := campaign.Config{
		Workers:        c.workers,
		Resolve:        experiments.CampaignResolver(),
		CheckpointPath: ckpt,
		Resume:         c.resume,
		Stream:         c.stream,
	}
	if c.verb {
		cfg.Reporter = campaign.NewLogReporter(stderr)
		cfg.Log = stderr
	}
	res, err := campaign.Run(ctx, cspec, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "memlife: %v\n", err)
		return 1
	}
	if c.jsonOut != "" {
		if err := writeFileAtomic(c.jsonOut, res.WriteJSON); err != nil {
			fmt.Fprintf(stderr, "memlife: writing %s: %v\n", c.jsonOut, err)
			return 1
		}
	}
	res.RenderText(stdout)
	return 0
}
