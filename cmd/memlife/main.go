// Command memlife runs the reproduction experiments of "Aging-aware
// Lifetime Enhancement for Memristor-based Neuromorphic Computing"
// (DATE 2019). Each experiment regenerates one table or figure of the
// paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	memlife -list
//	memlife -run table1 [-fast] [-seed N] [-v]
//	memlife -all [-fast]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"memlife/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI entry point: it parses args, executes the
// requested experiments, and returns the process exit code. User errors
// (unknown experiment id, conflicting flags) produce a one-line message
// on stderr and a non-zero code — never a stack trace.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memlife", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list   = fs.Bool("list", false, "list available experiments")
		runIDs = fs.String("run", "", "comma-separated experiment ids to run")
		all    = fs.Bool("all", false, "run every experiment")
		fast   = fs.Bool("fast", false, "use reduced sizes/budgets (seconds instead of minutes)")
		seed   = fs.Int64("seed", 1, "random seed")
		verb   = fs.Bool("v", false, "log progress to stderr")
		outDir = fs.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "memlife: unexpected argument %q (experiments are selected with -run)\n", fs.Arg(0))
		return 2
	}
	if *all && *runIDs != "" {
		fmt.Fprintln(stderr, "memlife: -all and -run are mutually exclusive")
		return 2
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", e.ID, e.Title)
		}
		return 0
	case *all || *runIDs != "":
		opt := experiments.Options{Fast: *fast, Seed: *seed}
		if *verb {
			opt.Log = stderr
		}
		var ids []string
		if *all {
			for _, e := range experiments.All() {
				ids = append(ids, e.ID)
			}
		} else {
			ids = strings.Split(*runIDs, ",")
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(stderr, "memlife: creating -out dir: %v\n", err)
				return 1
			}
		}
		for _, id := range ids {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(stderr, "memlife: unknown experiment %q (try -list)\n", id)
				return 1
			}
			w := stdout
			var f *os.File
			if *outDir != "" {
				var err error
				f, err = os.Create(filepath.Join(*outDir, id+".txt"))
				if err != nil {
					fmt.Fprintf(stderr, "memlife: %v\n", err)
					return 1
				}
				w = io.MultiWriter(stdout, f)
			}
			fmt.Fprintf(stdout, "=== %s: %s ===\n", e.ID, e.Title)
			start := time.Now()
			err := e.Run(w, opt)
			if f != nil {
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(stderr, "memlife: %s failed: %v\n", e.ID, err)
				return 1
			}
			fmt.Fprintf(stdout, "=== %s done in %s ===\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		return 0
	default:
		fs.Usage()
		return 2
	}
}
