package main

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// buildVersion reports the module version and VCS revision baked into
// the binary by the Go toolchain (-version output, and the header
// stamped on -metrics-out snapshots). Builds outside a module or
// without VCS metadata degrade gracefully to "(devel)".
func buildVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "(unknown)"
	}
	version := info.Main.Version
	if version == "" {
		version = "(devel)"
	}
	var rev string
	var dirty bool
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		// Pseudo-versions already embed the revision; don't repeat it.
		if !strings.Contains(version, rev) {
			if dirty {
				rev += "+dirty"
			}
			return fmt.Sprintf("%s %s", version, rev)
		}
		if dirty && !strings.Contains(version, "+dirty") {
			version += "+dirty"
		}
	}
	return version
}
