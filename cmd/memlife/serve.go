package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"time"

	"memlife/internal/retry"
	"memlife/internal/server"
	"memlife/internal/telemetry"
)

// runServe is the `memlife serve` subcommand: the lifetime-as-a-service
// daemon (see internal/server). It serves until ctx is cancelled — the
// first SIGINT/SIGTERM — then drains gracefully and exits 0; a second
// signal force-exits with exitForced.
func runServe(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memlife serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
		dir          = fs.String("store", "memlife-store", "store directory (job journal, results, checkpoints, lock)")
		jobWorkers   = fs.Int("job-workers", 1, "concurrently running jobs")
		shardWorkers = fs.Int("shard-workers", 0, "campaign workers inside each job (0 = GOMAXPROCS)")
		evalWorkers  = fs.Int("eval-workers", 0, "forward-pass parallelism inside each evaluation (bit-identical; 0 = serial)")
		queueCap     = fs.Int("queue-cap", 64, "max queued+running jobs before submissions get 429")
		retries      = fs.Int("retries", 3, "execution attempts per job before it is marked failed")
		drainGrace   = fs.Duration("drain-grace", 5*time.Second, "how long a drain waits for in-flight jobs before checkpointing them")
		metricsOut   = fs.String("metrics-out", "", "write a telemetry snapshot (canonical JSON) to this file on exit")
		verb         = fs.Bool("v", false, "log job lifecycle events to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "memlife serve: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	// The daemon always runs with a live registry: /metrics/json is part
	// of its API, and queue/cache/drain gauges are its operational
	// surface.
	reg := telemetry.NewRegistry()
	telemetry.SetGlobal(reg)
	defer telemetry.SetGlobal(nil)

	cfg := server.Config{
		Dir:          *dir,
		Addr:         *addr,
		JobWorkers:   *jobWorkers,
		ShardWorkers: *shardWorkers,
		EvalWorkers:  *evalWorkers,
		QueueCap:     *queueCap,
		Retry:        retry.Policy{MaxAttempts: *retries, BaseDelay: 500 * time.Millisecond, MaxDelay: 30 * time.Second, Jitter: 0.5, Seed: 1},
		DrainGrace:   *drainGrace,
	}
	if *verb {
		cfg.Log = stderr
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "memlife: %v\n", err)
		return 1
	}
	// The bound address goes to stderr (like -debug-addr) so stdout
	// stays machine-readable for wrappers.
	fmt.Fprintf(stderr, "memlife: serving on http://%s (store %s)\n", srv.Addr(), *dir)

	code := 0
	if err := srv.Run(ctx); err != nil {
		fmt.Fprintf(stderr, "memlife: drain: %v\n", err)
		code = 1
	}
	if *metricsOut != "" {
		snap := reg.Snapshot()
		snap.Version = fmt.Sprintf("memlife %s", buildVersion())
		if err := writeFileAtomic(*metricsOut, snap.WriteJSON); err != nil {
			fmt.Fprintf(stderr, "memlife: writing %s: %v\n", *metricsOut, err)
			code = 1
		}
	}
	return code
}

// runDoctor is the `memlife doctor` subcommand: audit a store
// directory's integrity (see server.Doctor). Exit 0 when healthy, 1
// when corruption was found.
func runDoctor(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memlife doctor", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("store", "memlife-store", "store directory to audit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "memlife doctor: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	ok, err := server.Doctor(*dir, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "memlife: %v\n", err)
		return 1
	}
	if !ok {
		return 1
	}
	return 0
}
