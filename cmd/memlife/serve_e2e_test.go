package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles the test binary as the real memlife entry point:
// when MEMLIFE_E2E_MAIN is set, it runs realMain — full signal
// handling included — so the e2e tests below can exercise genuine
// SIGTERM drains and SIGKILL crashes against a real process.
func TestMain(m *testing.M) {
	if os.Getenv("MEMLIFE_E2E_MAIN") == "1" {
		os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// tinySpec keeps e2e jobs around a handful of seconds: fast fixture
// budgets and a two-cycle lifetime simulation.
const tinySpec = `{"run":{"fast":true},"lifetime":{"max_cycles":2,"eval_n":64}}`

// daemon is one spawned `memlife serve` process.
type daemon struct {
	cmd    *exec.Cmd
	addr   string
	stderr *bytes.Buffer
	mu     *sync.Mutex
}

func (d *daemon) stderrText() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

// spawnServe starts a real daemon process on a free port and waits for
// its "serving on" banner.
func spawnServe(t *testing.T, store string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"serve", "-addr", "127.0.0.1:0", "-store", store}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "MEMLIFE_E2E_MAIN=1")
	pipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, stderr: &bytes.Buffer{}, mu: &sync.Mutex{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			fmt.Fprintln(d.stderr, line)
			d.mu.Unlock()
			if _, rest, ok := strings.Cut(line, "serving on http://"); ok {
				select {
				case addrCh <- strings.Fields(rest)[0]:
				default:
				}
			}
		}
	}()
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	select {
	case d.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never announced its address; stderr:\n%s", d.stderrText())
	}
	return d
}

// wait blocks for process exit and returns its exit code.
func (d *daemon) wait(t *testing.T) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("wait: %v", err)
	case <-time.After(120 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("daemon never exited; stderr:\n%s", d.stderrText())
	}
	return -1
}

func (d *daemon) signal(t *testing.T, sig os.Signal) {
	t.Helper()
	if err := d.cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
}

type e2eJob struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
}

func e2eSubmit(t *testing.T, addr string, seeds int) (int, e2eJob) {
	t.Helper()
	url := fmt.Sprintf("http://%s/v1/jobs?seeds=%d", addr, seeds)
	resp, err := http.Post(url, "application/json", strings.NewReader(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job e2eJob
	if resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, job
}

func e2eWaitDone(t *testing.T, addr, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(fmt.Sprintf("http://%s/v1/jobs/%s", addr, id))
		if err == nil {
			var job e2eJob
			derr := json.NewDecoder(resp.Body).Decode(&job)
			resp.Body.Close()
			if derr == nil {
				switch job.State {
				case "done":
					return
				case "failed":
					t.Fatalf("job %s failed", id)
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not done after %s", id, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func e2eResult(t *testing.T, addr, id string) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/results/%s", addr, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result = %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func e2eGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestServeE2EGracefulLifecycle is the serve-mode smoke: submit a
// scenario, see it complete, resubmit for an instant cache hit, check
// the operational endpoints, SIGTERM, and verify a clean exit-0 drain
// that leaves a store `memlife doctor` signs off on.
func TestServeE2EGracefulLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e daemon test in -short mode")
	}
	store := filepath.Join(t.TempDir(), "store")
	d := spawnServe(t, store, "-v")

	code, job := e2eSubmit(t, d.addr, 1)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	e2eWaitDone(t, d.addr, job.ID, 90*time.Second)

	// Duplicate submission: served from the store, no re-simulation.
	code, dup := e2eSubmit(t, d.addr, 1)
	if code != http.StatusOK || !dup.Cached {
		t.Fatalf("duplicate submit = %d cached=%v, want 200 cached", code, dup.Cached)
	}

	if code, body := e2eGet(t, "http://"+d.addr+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, body := e2eGet(t, "http://"+d.addr+"/metrics/json"); code != 200 || !strings.Contains(body, "server/jobs_done") {
		t.Fatalf("metrics = %d, want server counters in body (got %q)", code, body)
	}

	d.signal(t, syscall.SIGTERM)
	if exit := d.wait(t); exit != 0 {
		t.Fatalf("SIGTERM drain exited %d, want 0; stderr:\n%s", exit, d.stderrText())
	}
	if !strings.Contains(d.stderrText(), "draining") {
		t.Fatalf("drain must announce itself on stderr:\n%s", d.stderrText())
	}
	assertNoPartialFiles(t, store)

	var out, errb strings.Builder
	if code := run(context.Background(), []string{"doctor", "-store", store}, &out, &errb); code != 0 {
		t.Fatalf("doctor after drain exited %d:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "is healthy") {
		t.Fatalf("doctor verdict missing:\n%s", out.String())
	}
}

// TestServeE2EKillResumeByteIdentical is the crash drill with a real
// SIGKILL: a daemon is killed mid-job after at least one shard hit the
// checkpoint; a fresh daemon over the same store resumes the job and
// must produce a result byte-identical to a never-interrupted daemon's.
func TestServeE2EKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e daemon test in -short mode")
	}
	const seeds = 3

	// Reference: uninterrupted daemon in its own store.
	storeA := filepath.Join(t.TempDir(), "a")
	dA := spawnServe(t, storeA)
	_, jobA := e2eSubmit(t, dA.addr, seeds)
	e2eWaitDone(t, dA.addr, jobA.ID, 120*time.Second)
	want := e2eResult(t, dA.addr, jobA.ID)
	dA.signal(t, syscall.SIGTERM)
	if exit := dA.wait(t); exit != 0 {
		t.Fatalf("reference daemon drain exited %d", exit)
	}

	// Victim: SIGKILL as soon as the first shard lands in the
	// checkpoint journal — no drain, no cleanup.
	storeB := filepath.Join(t.TempDir(), "b")
	dB := spawnServe(t, storeB)
	_, jobB := e2eSubmit(t, dB.addr, seeds)
	if jobB.ID != jobA.ID {
		t.Fatalf("same spec produced ids %s vs %s", jobB.ID, jobA.ID)
	}
	ckpt := filepath.Join(storeB, "work", jobB.ID+".ckpt.jsonl")
	deadline := time.Now().Add(120 * time.Second)
	for {
		if b, err := os.ReadFile(ckpt); err == nil && bytes.Count(b, []byte("\n")) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpointed shard to kill over; stderr:\n%s", dB.stderrText())
		}
		time.Sleep(10 * time.Millisecond)
	}
	dB.signal(t, syscall.SIGKILL)
	dB.wait(t)

	// Takeover daemon: the journal replays the job, the checkpoint
	// resumes, the result must match byte-for-byte.
	dB2 := spawnServe(t, storeB)
	e2eWaitDone(t, dB2.addr, jobB.ID, 120*time.Second)
	got := e2eResult(t, dB2.addr, jobB.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("post-SIGKILL resume differs from uninterrupted run:\n got: %s\nwant: %s", got, want)
	}
	dB2.signal(t, syscall.SIGTERM)
	if exit := dB2.wait(t); exit != 0 {
		t.Fatalf("takeover daemon drain exited %d", exit)
	}
}

// TestServeE2ESecondSignalForceExits: the first SIGTERM starts a drain
// that patiently waits out the in-flight job; the second one is the
// operator overruling that patience — exit code 3, immediately.
func TestServeE2ESecondSignalForceExits(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e daemon test in -short mode")
	}
	store := filepath.Join(t.TempDir(), "store")
	d := spawnServe(t, store, "-drain-grace", "120s")
	_, job := e2eSubmit(t, d.addr, 1)

	// Wait until the job is actually running so the drain has something
	// to wait for.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("http://%s/v1/jobs/%s", d.addr, job.ID))
		var cur e2eJob
		if err == nil {
			json.NewDecoder(resp.Body).Decode(&cur)
			resp.Body.Close()
		}
		if cur.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (state %q)", cur.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	d.signal(t, syscall.SIGTERM)
	waitStderr(t, d, "draining", 30*time.Second)
	d.signal(t, syscall.SIGTERM)
	if exit := d.wait(t); exit != exitForced {
		t.Fatalf("second SIGTERM exited %d, want %d; stderr:\n%s", exit, exitForced, d.stderrText())
	}
}

func waitStderr(t *testing.T, d *daemon, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !strings.Contains(d.stderrText(), want) {
		if time.Now().After(deadline) {
			t.Fatalf("stderr never mentioned %q:\n%s", want, d.stderrText())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func assertNoPartialFiles(t *testing.T, dir string) {
	t.Helper()
	filepath.WalkDir(dir, func(path string, de fs.DirEntry, err error) error {
		if err == nil && !de.IsDir() && strings.Contains(de.Name(), ".tmp") {
			t.Errorf("partial file left behind: %s", path)
		}
		return nil
	})
}
