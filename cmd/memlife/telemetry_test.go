package main

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memlife/internal/telemetry"
)

// TestCLIMetricsAndTraceOut is the acceptance path: a fig4 run with
// -metrics-out and -trace-out must leave a valid canonical snapshot
// holding timeline records and a JSONL trace holding at least one span.
func TestCLIMetricsAndTraceOut(t *testing.T) {
	dir := t.TempDir()
	mOut := filepath.Join(dir, "m.json")
	tOut := filepath.Join(dir, "t.jsonl")
	var stdout, stderr strings.Builder
	args := []string{"-run", "fig4", "-fast", "-metrics-out", mOut, "-trace-out", tOut}
	if code := run(context.Background(), args, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}

	mf, err := os.Open(mOut)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	snap, err := telemetry.ReadSnapshot(mf)
	if err != nil {
		t.Fatalf("-metrics-out is not a valid snapshot: %v", err)
	}
	recs, ok := snap.Timeline("fig4/timeline")
	if !ok || len(recs) == 0 {
		t.Fatalf("snapshot must hold fig4/timeline records, got %v (present %v)", recs, ok)
	}
	if _, ok := recs[0]["usable_levels"]; !ok {
		t.Fatalf("timeline record lacks usable_levels: %v", recs[0])
	}

	tf, err := os.Open(tOut)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	trace, err := telemetry.ReadTrace(tf)
	if err != nil {
		t.Fatalf("-trace-out is not valid JSONL: %v", err)
	}
	spans := 0
	for _, r := range trace {
		if r.Type == "span" && r.Name == "experiment/run" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatalf("trace must hold at least one experiment/run span, got %d records", len(trace))
	}

	// The session must uninstall its globals on the way out.
	if telemetry.Global() != nil || telemetry.GlobalTracer() != nil {
		t.Fatal("telemetry globals must be uninstalled after run")
	}
}

// TestCLIDebugAddr checks the listener starts, announces its address,
// and does not outlive the invocation.
func TestCLIDebugAddr(t *testing.T) {
	var stdout, stderr strings.Builder
	args := []string{"-run", "fig4", "-fast", "-debug-addr", "127.0.0.1:0"}
	if code := run(context.Background(), args, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "debug server on http://127.0.0.1:") {
		t.Fatalf("stderr must announce the debug address:\n%s", stderr.String())
	}
}

// TestCLICancelledCampaignLeavesNoPartialJSON is the signal-cancel fix:
// an interrupted campaign must leave either no -json file or a complete
// one — never a truncated document — and no stray temp files. The
// -metrics-out snapshot is still written (telemetry outlives the failed
// mode), atomically.
func TestCLICancelledCampaignLeavesNoPartialJSON(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()
	out := filepath.Join(dir, "out.json")
	mOut := filepath.Join(dir, "m.json")
	var stdout, stderr strings.Builder
	args := []string{"-run", "fig4", "-fast", "-seeds", "3", "-json", out, "-metrics-out", mOut}
	if code := run(ctx, args, &stdout, &stderr); code != 1 {
		t.Fatalf("cancelled campaign must exit 1, got %d (stderr: %s)", code, stderr.String())
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatalf("cancelled campaign must not leave a -json file, stat err = %v", err)
	}
	mf, err := os.Open(mOut)
	if err != nil {
		t.Fatalf("-metrics-out must be written even on failure: %v", err)
	}
	defer mf.Close()
	if _, err := telemetry.ReadSnapshot(mf); err != nil {
		t.Fatalf("failure-path snapshot must still be valid: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stray temp file left behind: %s", e.Name())
		}
	}
}

// TestWriteFileAtomicReplacesAndCleansUp pins the helper's contract:
// success replaces the destination in one rename; a failed write leaves
// the old content untouched and removes its temp file.
func TestWriteFileAtomicReplacesAndCleansUp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("new"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "new" {
		t.Fatalf("content = %q, err %v, want new", got, err)
	}

	boom := errors.New("boom")
	if err := writeFileAtomic(path, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("writer error must propagate, got %v", err)
	}
	got, err = os.ReadFile(path)
	if err != nil || string(got) != "new" {
		t.Fatalf("failed write must leave old content, got %q err %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files must be cleaned up, dir holds %d entries", len(entries))
	}
}
